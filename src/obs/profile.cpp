#include "obs/profile.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace spectra::obs {

namespace detail {

// One node of a thread's timing tree. Nodes are created on first entry
// and leaked (threads may outlive main during shutdown; report code may
// walk a tree while its owner is still recording).
struct ProfileNode {
  const char* name = nullptr;
  ProfileNode* parent = nullptr;
  std::vector<ProfileNode*> children;
  std::uint64_t calls = 0;
  std::uint64_t incl_ns = 0;
  double flops = 0.0;
  double bytes = 0.0;
};

}  // namespace detail

namespace {

using detail::ProfileNode;

// Per-thread tree. Mutations come only from the owning thread; the mutex
// exists so report/reset can read from other threads. Uncontended in the
// hot path (same discipline as the trace buffers).
struct ThreadTree {
  Mutex mutex SG_ACQUIRED_AFTER(lock_order::obs)
      SG_ACQUIRED_BEFORE(lock_order::fft_cache);
  ProfileNode root SG_GUARDED_BY(mutex);
  ProfileNode* current SG_GUARDED_BY(mutex) = &root;
};

// Steady-clock now as nanoseconds since the clock's epoch.
std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ProfileState {
  Mutex mutex SG_ACQUIRED_AFTER(lock_order::obs)
      SG_ACQUIRED_BEFORE(lock_order::fft_cache);
  std::vector<ThreadTree*> trees SG_GUARDED_BY(mutex);  // leaked; one per thread ever seen
  // Time origin in steady-clock nanoseconds. Atomic, not guarded:
  // profile_reset rewrites it while every scope exit on every thread
  // reads it through profile_now_ns, and the hot path must stay
  // lock-free.
  std::atomic<std::int64_t> origin_ns{steady_now_ns()};
};

ProfileState& state() {
  // sg-lint: allow(mutable-static) leaked profiler singleton: worker threads may still record during exit
  static ProfileState* s = new ProfileState();
  return *s;
}

ThreadTree& thread_tree() {
  // sg-lint: allow(mutable-static) per-thread profile tree, leaked so report can walk it after thread exit
  thread_local ThreadTree* tree = [] {
    auto* t = new ThreadTree();
    ProfileState& s = state();
    MutexLock lock(s.mutex);
    s.trees.push_back(t);
    return t;
  }();
  return *tree;
}

std::string json_escape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out += '\\';
    out += *s;
  }
  return out;
}

// Primary autostart: runs at static init in any binary that opens
// profile scopes (they reference this TU). The Registry::instance()
// hook is the backstop; the once-guard makes the pair idempotent.
const bool g_profile_env_init = [] {
  detail::profile_env_autostart();
  return true;
}();

// --- merged report tree -------------------------------------------------

// Aggregate of same-path nodes across threads.
struct MergedNode {
  const char* name = nullptr;
  std::uint64_t calls = 0;
  std::uint64_t incl_ns = 0;
  double flops = 0.0;
  double bytes = 0.0;
  std::vector<MergedNode> children;
};

MergedNode& merged_child(MergedNode& parent, const char* name) {
  for (MergedNode& child : parent.children) {
    if (child.name == name || std::strcmp(child.name, name) == 0) return child;
  }
  parent.children.emplace_back();
  parent.children.back().name = name;
  return parent.children.back();
}

// `tree->mutex` must be held by the caller for the root of the walk.
void merge_into(MergedNode& dst, const ProfileNode& src) {
  dst.calls += src.calls;
  dst.incl_ns += src.incl_ns;
  dst.flops += src.flops;
  dst.bytes += src.bytes;
  for (const ProfileNode* child : src.children) {
    merge_into(merged_child(dst, child->name), *child);
  }
}

// Snapshot every thread's tree into one merged root (name == nullptr).
MergedNode merged_snapshot() {
  MergedNode root;
  ProfileState& s = state();
  MutexLock registry_lock(s.mutex);
  for (ThreadTree* tree : s.trees) {
    MutexLock lock(tree->mutex);
    merge_into(root, tree->root);
  }
  return root;
}

std::uint64_t children_incl_ns(const MergedNode& node) {
  std::uint64_t total = 0;
  for (const MergedNode& child : node.children) total += child.incl_ns;
  return total;
}

// Exclusive time: inclusive minus children's inclusive (clamped — a
// child's open scope can momentarily exceed its parent's recorded time).
std::uint64_t excl_ns(const MergedNode& node) {
  const std::uint64_t children = children_incl_ns(node);
  return node.incl_ns > children ? node.incl_ns - children : 0;
}

void format_text(const MergedNode& node, int depth, std::ostringstream& out) {
  const double incl_s = static_cast<double>(node.incl_ns) * 1e-9;
  char row[256];
  std::string label(static_cast<std::size_t>(2 * depth), ' ');
  label += node.name;
  std::snprintf(row, sizeof(row), "%-42s %9llu %11.6f %11.6f", label.c_str(),
                static_cast<unsigned long long>(node.calls),
                incl_s, static_cast<double>(excl_ns(node)) * 1e-9);
  out << row;
  if (node.flops > 0.0) {
    std::snprintf(row, sizeof(row), " %9.3f", incl_s > 0.0 ? node.flops / incl_s * 1e-9 : 0.0);
    out << row;
    if (node.bytes > 0.0) {
      std::snprintf(row, sizeof(row), " %8.2f", node.flops / node.bytes);
      out << row;
    }
  }
  out << '\n';
  for (const MergedNode& child : node.children) format_text(child, depth + 1, out);
}

void format_json(const MergedNode& node, std::ostringstream& out) {
  const double incl_s = static_cast<double>(node.incl_ns) * 1e-9;
  out << "{\"name\":\"" << json_escape(node.name) << "\",\"calls\":" << node.calls
      << ",\"incl_seconds\":" << incl_s
      << ",\"excl_seconds\":" << static_cast<double>(excl_ns(node)) * 1e-9
      << ",\"flops\":" << node.flops << ",\"bytes\":" << node.bytes;
  if (node.flops > 0.0 && incl_s > 0.0) {
    out << ",\"gflops\":" << node.flops / incl_s * 1e-9;
  }
  out << ",\"children\":[";
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    if (i != 0) out << ',';
    format_json(node.children[i], out);
  }
  out << "]}";
}

double wall_seconds() {
  const std::int64_t elapsed_ns =
      steady_now_ns() - state().origin_ns.load(std::memory_order_relaxed);
  return static_cast<double>(elapsed_ns) * 1e-9;
}

}  // namespace

namespace detail {

std::atomic<bool> g_profile_enabled{false};

std::uint64_t profile_now_ns() {
  return static_cast<std::uint64_t>(
      steady_now_ns() - state().origin_ns.load(std::memory_order_relaxed));
}

ProfileNode* profile_enter(const char* name) {
  ThreadTree& tree = thread_tree();
  MutexLock lock(tree.mutex);
  ProfileNode* parent = tree.current;
  for (ProfileNode* child : parent->children) {
    // String literals make pointer identity the common case; the strcmp
    // covers the same name spelled in two translation units.
    if (child->name == name || std::strcmp(child->name, name) == 0) {
      tree.current = child;
      return child;
    }
  }
  auto* node = new ProfileNode();  // leaked with the tree
  node->name = name;
  node->parent = parent;
  parent->children.push_back(node);
  tree.current = node;
  return node;
}

void profile_exit(ProfileNode* node, std::uint64_t start_ns) {
  ThreadTree& tree = thread_tree();
  MutexLock lock(tree.mutex);
  node->calls += 1;
  node->incl_ns += profile_now_ns() - start_ns;
  // Pop to the scope's own parent (not current->parent) so an exit after
  // profile_reset or mismatched nesting cannot walk off the tree.
  tree.current = node->parent != nullptr ? node->parent : &tree.root;
}

void profile_env_autostart() {
  // sg-lint: allow(mutable-static) once-guard for the env autostart hook
  static bool done = false;
  if (done) return;
  done = true;
  // `1`/`true` only enable; anything else is additionally the JSON dump
  // path (profile_dump reads the knob again at exit).
  if (std::getenv("SPECTRA_PROFILE") != nullptr) {
    g_profile_enabled.store(true, std::memory_order_relaxed);
    std::atexit([] {
      std::fputs(profile_report_text().c_str(), stderr);
      profile_dump();
    });
  }
}

}  // namespace detail

void profile_set_enabled(bool enabled) {
  detail::g_profile_enabled.store(enabled, std::memory_order_relaxed);
}

void profile_add_work(double flops, double bytes) {
  if (!profile_enabled()) return;
  ThreadTree& tree = thread_tree();
  MutexLock lock(tree.mutex);
  if (tree.current == &tree.root) return;  // no open scope on this thread
  tree.current->flops += flops;
  tree.current->bytes += bytes;
}

std::string profile_report_text() {
  const MergedNode root = merged_snapshot();
  std::ostringstream out;
  char row[256];
  std::snprintf(row, sizeof(row), "# profile tree — wall %.6f s\n%-42s %9s %11s %11s %9s %8s\n",
                wall_seconds(), "scope", "calls", "incl(s)", "excl(s)", "GFLOP/s", "f/B");
  out << row;
  for (const MergedNode& child : root.children) format_text(child, 0, out);
  return out.str();
}

std::string profile_report_json() {
  const MergedNode root = merged_snapshot();
  std::ostringstream out;
  out << "{\"wall_seconds\":" << wall_seconds() << ",\"tree\":[";
  for (std::size_t i = 0; i < root.children.size(); ++i) {
    if (i != 0) out << ',';
    format_json(root.children[i], out);
  }
  out << "]}";
  return out.str();
}

void profile_dump(const std::string& path) {
  std::string target = path;
  if (target.empty()) {
    const char* env = std::getenv("SPECTRA_PROFILE");
    if (env != nullptr && std::strcmp(env, "1") != 0 && std::strcmp(env, "true") != 0) {
      target = env;
    }
  }
  if (target.empty()) return;
  std::ofstream out(target);
  if (!out) return;
  out << profile_report_json() << '\n';
}

void profile_reset() {
  ProfileState& s = state();
  {
    MutexLock registry_lock(s.mutex);
    for (ThreadTree* tree : s.trees) {
      MutexLock lock(tree->mutex);
      // Children stay allocated (scopes may hold pointers); zero the stats
      // and detach them from the tree.
      tree->root.children.clear();
      tree->current = &tree->root;
    }
  }
  s.origin_ns.store(steady_now_ns(), std::memory_order_relaxed);
}

}  // namespace spectra::obs
