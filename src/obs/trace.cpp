#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <vector>

#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace spectra::obs {

namespace {

struct TraceEvent {
  const char* name;
  std::uint64_t ts_us;
  std::uint64_t dur_us;
};

// Per-thread buffer. Appends come only from the owning thread; the
// buffer mutex exists so trace_json()/trace_reset()/stream drains can
// read from other threads. Uncontended in the hot path.
struct ThreadBuffer {
  Mutex mutex SG_ACQUIRED_AFTER(lock_order::obs)
      SG_ACQUIRED_BEFORE(lock_order::fft_cache);
  std::vector<TraceEvent> events SG_GUARDED_BY(mutex);
  std::uint32_t tid = 0;  // assigned once at registration, const afterwards
};

// Streaming sink state. `mutex` serializes drains; the hot path only
// touches `pending` (relaxed atomic) and takes the mutex via try_lock,
// so a drain in progress never blocks recording threads.
struct StreamState {
  Mutex mutex SG_ACQUIRED_AFTER(lock_order::obs)
      SG_ACQUIRED_BEFORE(lock_order::fft_cache);
  std::ofstream out SG_GUARDED_BY(mutex);
  std::string path SG_GUARDED_BY(mutex);
  bool any_event SG_GUARDED_BY(mutex) = false;  // comma needed before the next event
};

struct TraceState {
  Mutex mutex SG_ACQUIRED_AFTER(lock_order::obs)
      SG_ACQUIRED_BEFORE(lock_order::fft_cache);
  std::vector<ThreadBuffer*> buffers SG_GUARDED_BY(mutex);  // leaked; one per thread
  std::uint32_t next_tid SG_GUARDED_BY(mutex) = 1;
  // Set at construction, never reset — reads need no lock.
  std::chrono::steady_clock::time_point origin = std::chrono::steady_clock::now();
  std::atomic<bool> streaming{false};   // fast check before the pending math
  std::atomic<std::uint64_t> pending{0};  // events buffered since last drain
  StreamState stream;
};

TraceState& state() {
  // sg-lint: allow(mutable-static) leaked trace singleton: threads may outlive main
  static TraceState* s = new TraceState();
  return *s;
}

ThreadBuffer& thread_buffer() {
  // sg-lint: allow(mutable-static) per-thread span buffer, leaked so events survive thread exit
  thread_local ThreadBuffer* buffer = [] {
    auto* b = new ThreadBuffer();  // leaked: events must survive thread exit
    TraceState& s = state();
    MutexLock lock(s.mutex);
    b->tid = s.next_tid++;
    s.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

std::string json_escape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out += '\\';
    out += *s;
  }
  return out;
}

// Primary autostart: runs at static init in any binary that records
// spans (they reference this TU). The Registry::instance() hook is the
// backstop; the once-guard makes the pair idempotent.
const bool g_trace_env_init = [] {
  detail::trace_env_autostart();
  return true;
}();

void format_event(std::ostream& out, const TraceEvent& event, std::uint32_t tid) {
  out << "{\"name\":\"" << json_escape(event.name)
      << "\",\"cat\":\"spectra\",\"ph\":\"X\",\"pid\":1,\"tid\":" << tid
      << ",\"ts\":" << event.ts_us << ",\"dur\":" << event.dur_us << '}';
}

// Move every buffered span into the open stream. Caller holds
// `stream.mutex`; buffers are cleared as they drain, bounding memory.
void drain_locked(TraceState& s) SG_REQUIRES(s.stream.mutex) {
  if (!s.stream.out.is_open()) return;
  std::vector<TraceEvent> batch;
  std::vector<ThreadBuffer*> buffers;
  {
    MutexLock registry_lock(s.mutex);
    buffers = s.buffers;
  }
  for (ThreadBuffer* buffer : buffers) {
    batch.clear();
    std::uint32_t tid = 0;
    {
      MutexLock lock(buffer->mutex);
      batch.swap(buffer->events);
      tid = buffer->tid;
    }
    for (const TraceEvent& event : batch) {
      if (s.stream.any_event) s.stream.out << ",\n";
      s.stream.any_event = true;
      format_event(s.stream.out, event, tid);
    }
  }
  s.pending.store(0, std::memory_order_relaxed);
  s.stream.out.flush();
  Registry::instance().counter("trace.stream_flushes").inc();
}

}  // namespace

namespace detail {

std::atomic<bool> g_trace_enabled{false};

std::uint64_t trace_now_us() {
  const auto elapsed = std::chrono::steady_clock::now() - state().origin;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
}

void trace_record(const char* name, std::uint64_t start_us, std::uint64_t dur_us) {
  ThreadBuffer& buffer = thread_buffer();
  {
    MutexLock lock(buffer.mutex);
    buffer.events.push_back({name, start_us, dur_us});
  }
  TraceState& s = state();
  if (!s.streaming.load(std::memory_order_relaxed)) return;
  const std::uint64_t pending = s.pending.fetch_add(1, std::memory_order_relaxed) + 1;
  if (pending < kStreamFlushEvents) return;
  // Opportunistic drain: whichever thread crosses the threshold while
  // the stream is free does the work; others keep recording.
  if (s.stream.mutex.try_lock()) {
    MutexLock lock(s.stream.mutex, std::adopt_lock);
    drain_locked(s);
  }
}

void trace_env_autostart() {
  // sg-lint: allow(mutable-static) once-guard for the env autostart hook
  static bool done = false;
  if (done) return;
  done = true;
  const char* env = std::getenv("SPECTRA_TRACE");
  if (env == nullptr || env[0] == '\0') return;
  g_trace_enabled.store(true, std::memory_order_relaxed);
  trace_stream_open(env);
  std::atexit([] { trace_stream_close(); });
}

}  // namespace detail

void trace_set_enabled(bool enabled) {
  detail::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

std::string trace_json() {
  TraceState& s = state();
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  MutexLock registry_lock(s.mutex);
  for (ThreadBuffer* buffer : s.buffers) {
    MutexLock lock(buffer->mutex);
    for (const TraceEvent& event : buffer->events) {
      if (!first) out << ',';
      first = false;
      format_event(out, event, buffer->tid);
    }
  }
  out << "]}";
  return out.str();
}

void trace_flush(const std::string& path) {
  std::string target = path;
  if (target.empty()) {
    const char* env = std::getenv("SPECTRA_TRACE");
    if (env != nullptr) target = env;
  }
  if (target.empty()) return;
  // When the stream owns that file, a whole-document overwrite would
  // corrupt it — route through a drain instead.
  {
    TraceState& s = state();
    MutexLock lock(s.stream.mutex);
    if (s.stream.out.is_open() && s.stream.path == target) {
      drain_locked(s);
      return;
    }
  }
  std::ofstream out(target);
  if (!out) return;
  out << trace_json() << '\n';
}

void trace_reset() {
  TraceState& s = state();
  MutexLock registry_lock(s.mutex);
  for (ThreadBuffer* buffer : s.buffers) {
    MutexLock lock(buffer->mutex);
    buffer->events.clear();
  }
  s.pending.store(0, std::memory_order_relaxed);
}

bool trace_recover_partial(const std::string& path) {
  std::string tail;
  {
    std::ifstream in(path);
    if (!in) return false;
    std::ostringstream contents;
    contents << in.rdbuf();
    tail = contents.str();
  }
  // Streaming files open with '[' and only a clean close writes the
  // final ']'. A kill between drains leaves the file ending at an event
  // boundary ('}'), so the terminator alone cannot tell complete from
  // cut — the leading '[' can. Whole-document dumps start with '{' and
  // are written in one shot; leave them (and already-closed streams)
  // alone.
  std::size_t begin = 0;
  while (begin < tail.size() && (tail[begin] == '\n' || tail[begin] == ' ')) ++begin;
  std::size_t end = tail.size();
  while (end > begin && (tail[end - 1] == '\n' || tail[end - 1] == ' ')) --end;
  if (end == begin || tail[begin] != '[') return false;
  if (tail[end - 1] == ']') return false;
  // Drop any record cut mid-write: keep through the last complete event
  // (event JSON is flat, so the last '}' always closes an event), or
  // just the '[' header when the kill landed before the first drain.
  const std::size_t brace = tail.find_last_of('}', end - 1);
  const std::size_t keep = (brace == std::string::npos || brace < begin) ? begin : brace;
  {
    std::ofstream out(path, std::ios::trunc);
    if (!out) return false;
    out << tail.substr(0, keep + 1) << "\n]\n";
  }
  const std::string recovered = path + ".recovered";
  std::remove(recovered.c_str());
  return std::rename(path.c_str(), recovered.c_str()) == 0;
}

void trace_stream_open(const std::string& path) {
  if (path.empty()) return;
  TraceState& s = state();
  // Lock-free already-open check: a drain (which holds the stream mutex)
  // may fault in Registry::instance(), whose env hooks re-enter here —
  // bailing on the atomic avoids self-deadlock on the mutex.
  if (s.streaming.load(std::memory_order_relaxed)) return;
  MutexLock lock(s.stream.mutex);
  if (s.stream.out.is_open()) return;
  trace_recover_partial(path);
  s.stream.out.open(path);
  if (!s.stream.out) return;
  s.stream.path = path;
  s.stream.any_event = false;
  s.stream.out << "[\n";
  s.stream.out.flush();
  s.streaming.store(true, std::memory_order_relaxed);
}

void trace_stream_drain() {
  TraceState& s = state();
  MutexLock lock(s.stream.mutex);
  drain_locked(s);
}

void trace_stream_close() {
  TraceState& s = state();
  MutexLock lock(s.stream.mutex);
  if (!s.stream.out.is_open()) return;
  s.streaming.store(false, std::memory_order_relaxed);
  drain_locked(s);
  s.stream.out << "\n]\n";
  s.stream.out.close();
  s.stream.path.clear();
  s.stream.any_event = false;
}

}  // namespace spectra::obs
