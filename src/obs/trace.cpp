#include "obs/trace.h"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <vector>

namespace spectra::obs {

namespace {

struct TraceEvent {
  const char* name;
  std::uint64_t ts_us;
  std::uint64_t dur_us;
};

// Per-thread buffer. Appends come only from the owning thread; the
// buffer mutex exists so trace_json()/trace_reset() can read from other
// threads. Uncontended in the hot path.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
};

struct TraceState {
  std::mutex mutex;                     // guards `buffers`
  std::vector<ThreadBuffer*> buffers;   // leaked; one per thread ever seen
  std::uint32_t next_tid = 1;
  std::chrono::steady_clock::time_point origin = std::chrono::steady_clock::now();
};

TraceState& state() {
  static TraceState* s = new TraceState();  // leaked: threads may outlive main
  return *s;
}

ThreadBuffer& thread_buffer() {
  thread_local ThreadBuffer* buffer = [] {
    auto* b = new ThreadBuffer();  // leaked: events must survive thread exit
    TraceState& s = state();
    std::lock_guard lock(s.mutex);
    b->tid = s.next_tid++;
    s.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

std::string json_escape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out += '\\';
    out += *s;
  }
  return out;
}

// Enable tracing at startup when SPECTRA_TRACE names an output file.
const bool g_trace_env_init = [] {
  if (std::getenv("SPECTRA_TRACE") != nullptr) {
    detail::g_trace_enabled.store(true, std::memory_order_relaxed);
    std::atexit([] { trace_flush(); });
  }
  return true;
}();

}  // namespace

namespace detail {

std::atomic<bool> g_trace_enabled{false};

std::uint64_t trace_now_us() {
  const auto elapsed = std::chrono::steady_clock::now() - state().origin;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
}

void trace_record(const char* name, std::uint64_t start_us, std::uint64_t dur_us) {
  ThreadBuffer& buffer = thread_buffer();
  std::lock_guard lock(buffer.mutex);
  buffer.events.push_back({name, start_us, dur_us});
}

}  // namespace detail

void trace_set_enabled(bool enabled) {
  detail::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

std::string trace_json() {
  TraceState& s = state();
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  std::lock_guard registry_lock(s.mutex);
  for (ThreadBuffer* buffer : s.buffers) {
    std::lock_guard lock(buffer->mutex);
    for (const TraceEvent& event : buffer->events) {
      if (!first) out << ',';
      first = false;
      out << "{\"name\":\"" << json_escape(event.name)
          << "\",\"cat\":\"spectra\",\"ph\":\"X\",\"pid\":1,\"tid\":" << buffer->tid
          << ",\"ts\":" << event.ts_us << ",\"dur\":" << event.dur_us << '}';
    }
  }
  out << "]}";
  return out.str();
}

void trace_flush(const std::string& path) {
  std::string target = path;
  if (target.empty()) {
    const char* env = std::getenv("SPECTRA_TRACE");
    if (env != nullptr) target = env;
  }
  if (target.empty()) return;
  std::ofstream out(target);
  if (!out) return;
  out << trace_json() << '\n';
}

void trace_reset() {
  TraceState& s = state();
  std::lock_guard registry_lock(s.mutex);
  for (ThreadBuffer* buffer : s.buffers) {
    std::lock_guard lock(buffer->mutex);
    buffer->events.clear();
  }
}

}  // namespace spectra::obs
