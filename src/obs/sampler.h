// Background resource sampler: an opt-in thread that periodically
// records process RSS / peak RSS (/proc/self/status), CPU utime/stime
// (/proc/self/stat), and thread-pool queue state into the metrics
// registry — and, when SPECTRA_TRAIN_LOG is set, appends one JSONL tick
// line per sample so resource usage lands in the same time-series as the
// training telemetry.
//
// Sampling is off by default. Setting SPECTRA_SAMPLE_MS=<interval> starts
// the sampler at that cadence during static init (stopped again via
// atexit); tests drive it directly with start()/stop() or take single
// snapshots with sample_once().
//
// Instruments updated per tick:
//   proc.rss_bytes            gauge      resident set size
//   proc.peak_rss_bytes       max_gauge  high-water RSS (VmHWM)
//   proc.cpu_utime_seconds    gauge      cumulative user CPU
//   proc.cpu_stime_seconds    gauge      cumulative system CPU
//   proc.sampler_ticks        counter    samples taken
//
// The sampler only reads /proc and stores into registry atomics — it
// never touches compute state, preserving the bitwise-determinism
// contract regardless of tick timing.

#pragma once

#include <thread>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace spectra::obs {

namespace detail {
// Idempotent SPECTRA_SAMPLE_MS autostart hook, invoked from
// Registry::instance() so the static-archive linker cannot drop it. Must
// not call Registry::instance() on the calling thread (it runs inside
// the registry's own initialization).
void sampler_env_autostart();
}  // namespace detail

// One snapshot of the process resource counters. Zeroes on platforms
// without /proc (the sampler then still ticks, recording zeros).
struct ProcSample {
  double rss_bytes = 0.0;
  double peak_rss_bytes = 0.0;
  double cpu_utime_seconds = 0.0;
  double cpu_stime_seconds = 0.0;
};

// Read /proc/self/{status,stat} once. Exposed for tests and for callers
// that want a snapshot without the background thread.
ProcSample read_proc_sample();

// Take one sample and push it into the metrics registry (and the train
// JSONL when `jsonl` is true and SPECTRA_TRAIN_LOG names a file).
// Returns the sample. This is the body of one background tick.
ProcSample sample_once(bool jsonl = false);

class ResourceSampler {
 public:
  // The process-wide sampler (leaked; the thread is joined on stop()).
  static ResourceSampler& instance();

  // Start ticking every `interval_ms` (clamped to >= 1). No-op when
  // already running.
  void start(long interval_ms);

  // Stop and join the background thread. Safe to call when not running;
  // registered via atexit by the env autostart.
  void stop();

  bool running() const;

 private:
  ResourceSampler() = default;

  void loop(long interval_ms);

  mutable Mutex mutex_ SG_ACQUIRED_AFTER(lock_order::obs)
      SG_ACQUIRED_BEFORE(lock_order::fft_cache);
  CondVar cv_;  // signalled by stop() to cut a sleep short
  std::thread thread_ SG_GUARDED_BY(mutex_);
  bool running_ SG_GUARDED_BY(mutex_) = false;
  bool stop_flag_ SG_GUARDED_BY(mutex_) = false;
};

}  // namespace spectra::obs
