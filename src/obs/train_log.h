// Per-iteration training telemetry, written as JSONL (one object per
// line) to the file named by SPECTRA_TRAIN_LOG. The trainer feeds one
// record per iteration; a disabled sink (env unset / empty path) makes
// write() a no-op so the hot loop pays nothing beyond a branch.
//
// Record fields (the five documented telemetry signals):
//   iter         0-based iteration index
//   d_loss       discriminator loss
//   g_adv_loss   generator adversarial loss
//   l1_loss      explicit L1 loss (Eq. 1)
//   grad_norm_d / grad_norm_g   pre-clip gradient norms
//   seconds      iteration wall time

#pragma once

#include <fstream>
#include <optional>
#include <string>

namespace spectra::obs {

struct TrainIterRecord {
  long iteration = 0;
  double d_loss = 0.0;
  double g_adv_loss = 0.0;
  double l1_loss = 0.0;
  double grad_norm_d = 0.0;
  double grad_norm_g = 0.0;
  double seconds = 0.0;
};

// One JSONL line (no trailing newline).
std::string to_jsonl(const TrainIterRecord& record);

// Inverse of to_jsonl; nullopt when a field is missing or malformed.
std::optional<TrainIterRecord> parse_jsonl(const std::string& line);

class TrainLogSink {
 public:
  // Opens $SPECTRA_TRAIN_LOG for appending; disabled when unset.
  TrainLogSink();

  // Explicit path; empty string means disabled.
  explicit TrainLogSink(const std::string& path);

  bool enabled() const { return out_.is_open(); }

  // Append one record and flush (crash-safe partial logs). No-op when
  // disabled.
  void write(const TrainIterRecord& record);

 private:
  std::ofstream out_;
};

}  // namespace spectra::obs
