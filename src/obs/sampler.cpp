#include "obs/sampler.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/metrics.h"

#if defined(__linux__)
#include <unistd.h>
#endif

namespace spectra::obs {

namespace {

// Parse "VmRSS:     1234 kB"-style lines from /proc/self/status.
double status_kb(const std::string& contents, const char* key) {
  const std::size_t pos = contents.find(key);
  if (pos == std::string::npos) return 0.0;
  const char* p = contents.c_str() + pos + std::string(key).size();
  return std::strtod(p, nullptr) * 1024.0;
}

std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

// Milliseconds since the first call (sampler time origin for JSONL ticks).
double elapsed_ms() {
  // sg-lint: allow(mutable-static) const time origin, set once on first sample
  static const std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
  const std::chrono::duration<double, std::milli> elapsed =
      std::chrono::steady_clock::now() - origin;
  return elapsed.count();
}

// Append one resource tick to $SPECTRA_TRAIN_LOG. The sampler keeps its
// own append-mode stream (O_APPEND, flushed per line) so it interleaves
// whole lines with the trainer's TrainLogSink without coordination.
void append_jsonl_tick(const ProcSample& sample) {
  const char* path = std::getenv("SPECTRA_TRAIN_LOG");
  if (path == nullptr || path[0] == '\0') return;
  Registry& registry = Registry::instance();
  std::ostringstream line;
  line << "{\"sample_ms\":" << format_double(elapsed_ms())
       << ",\"rss_bytes\":" << format_double(sample.rss_bytes)
       << ",\"peak_rss_bytes\":" << format_double(sample.peak_rss_bytes)
       << ",\"cpu_utime_seconds\":" << format_double(sample.cpu_utime_seconds)
       << ",\"cpu_stime_seconds\":" << format_double(sample.cpu_stime_seconds)
       << ",\"pool_queue_depth\":" << format_double(registry.gauge("pool.queue_depth").value())
       << ",\"pool_tasks_executed\":" << registry.counter("pool.tasks_executed").value()
       << '}';
  std::ofstream out(path, std::ios::app);
  if (!out) return;
  out << line.str() << '\n';
}

}  // namespace

ProcSample read_proc_sample() {
  ProcSample sample;
#if defined(__linux__)
  {
    std::ifstream status("/proc/self/status");
    if (status) {
      std::stringstream contents;
      contents << status.rdbuf();
      const std::string text = contents.str();
      sample.rss_bytes = status_kb(text, "VmRSS:");
      sample.peak_rss_bytes = status_kb(text, "VmHWM:");
    }
  }
  {
    std::ifstream stat("/proc/self/stat");
    std::string line;
    if (stat && std::getline(stat, line)) {
      // Fields 14 (utime) and 15 (stime) in clock ticks; the comm field
      // may contain spaces, so tokenize after the closing ')'.
      const std::size_t close = line.rfind(')');
      if (close != std::string::npos) {
        std::istringstream fields(line.substr(close + 1));
        std::string token;
        double utime_ticks = 0.0;
        double stime_ticks = 0.0;
        // After ')': state is field 3; utime is field 14 → the 12th token.
        for (int i = 1; i <= 13 && (fields >> token); ++i) {
          if (i == 12) utime_ticks = std::strtod(token.c_str(), nullptr);
          if (i == 13) stime_ticks = std::strtod(token.c_str(), nullptr);
        }
        const double ticks_per_second = static_cast<double>(sysconf(_SC_CLK_TCK));
        if (ticks_per_second > 0.0) {
          sample.cpu_utime_seconds = utime_ticks / ticks_per_second;
          sample.cpu_stime_seconds = stime_ticks / ticks_per_second;
        }
      }
    }
  }
#endif
  return sample;
}

ProcSample sample_once(bool jsonl) {
  const ProcSample sample = read_proc_sample();
  Registry& registry = Registry::instance();
  registry.gauge("proc.rss_bytes").set(sample.rss_bytes);
  registry.max_gauge("proc.peak_rss_bytes").update(sample.peak_rss_bytes);
  registry.gauge("proc.cpu_utime_seconds").set(sample.cpu_utime_seconds);
  registry.gauge("proc.cpu_stime_seconds").set(sample.cpu_stime_seconds);
  registry.counter("proc.sampler_ticks").inc();
  if (jsonl) append_jsonl_tick(sample);
  return sample;
}

ResourceSampler& ResourceSampler::instance() {
  // sg-lint: allow(mutable-static) leaked sampler singleton; atexit stop() joins the thread
  static ResourceSampler* sampler = new ResourceSampler();
  return *sampler;
}

void ResourceSampler::start(long interval_ms) {
  MutexLock lock(mutex_);
  if (running_) return;
  if (interval_ms < 1) interval_ms = 1;
  stop_flag_ = false;
  running_ = true;
  thread_ = std::thread([this, interval_ms] { loop(interval_ms); });
}

void ResourceSampler::stop() {
  std::thread to_join;
  {
    MutexLock lock(mutex_);
    if (!running_) return;
    stop_flag_ = true;
    to_join = std::move(thread_);
    running_ = false;
  }
  cv_.notify_all();
  if (to_join.joinable()) to_join.join();
}

bool ResourceSampler::running() const {
  MutexLock lock(mutex_);
  return running_;
}

void ResourceSampler::loop(long interval_ms) {
  for (;;) {
    sample_once(/*jsonl=*/true);
    const std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(interval_ms);
    // Explicit deadline loop instead of a predicate wait: the thread
    // safety analysis does not look inside lambdas, so this keeps the
    // stop_flag_ read checked against mutex_.
    MutexLock lock(mutex_);
    while (!stop_flag_) {
      if (cv_.wait_until(mutex_, deadline) == std::cv_status::timeout) break;
    }
    if (stop_flag_) return;
  }
}

namespace detail {

void sampler_env_autostart() {
  // sg-lint: allow(mutable-static) once-guard for the env autostart hook
  static bool done = false;
  if (done) return;
  done = true;
  const char* env = std::getenv("SPECTRA_SAMPLE_MS");
  if (env == nullptr || env[0] == '\0') return;
  const long interval_ms = std::strtol(env, nullptr, 10);
  if (interval_ms <= 0) return;
  // Only spawns the thread here — the thread itself does the registry
  // lookups, so this is safe to call from inside Registry::instance().
  ResourceSampler::instance().start(interval_ms);
  std::atexit([] { ResourceSampler::instance().stop(); });
}

}  // namespace detail

}  // namespace spectra::obs
