// Structured run manifests: one JSON document per bench/training run
// capturing everything needed to diff performance across commits — git
// SHA and build flags (baked in at configure time), every SPECTRA_* knob
// in the environment, wall time, the final metrics snapshot, and the
// profile tree. Benches emit one via bench_report(); any process can opt
// in by setting SPECTRA_RUNMETA=<path> (written at exit).
//
// Document shape:
//   {"name": ..., "git_sha": ..., "build_type": ..., "cxx_flags": ...,
//    "wall_seconds": ..., "env": {"SPECTRA_*": ...},
//    "extra": {...},              // run_manifest_set() key/values
//    "metrics": {...},            // Registry json_snapshot()
//    "profile": {...}}            // profile_report_json()

#pragma once

#include <string>

namespace spectra::obs {

namespace detail {
// Idempotent SPECTRA_RUNMETA autostart hook, invoked from
// Registry::instance() so the static-archive linker cannot drop it.
// Registers an atexit writer; never touches the registry directly.
void run_manifest_env_autostart();
}  // namespace detail

// Attach an extra key to the manifest's "extra" object. `value` must be
// a valid JSON value (callers pass numbers as-is and quote strings via
// run_manifest_set_string). Used for run-specific facts such as the
// seed. Later calls with the same key overwrite.
void run_manifest_set(const std::string& key, const std::string& json_value);
void run_manifest_set_string(const std::string& key, const std::string& value);

// Default run name when a writer passes none — notably the atexit
// rewrite registered by the SPECTRA_RUNMETA autostart, which would
// otherwise stamp "run" over the name bench_report() used. SPECTRA_RUN
// still takes precedence.
void run_manifest_set_name(const std::string& run_name);

// Build the manifest document. `run_name` defaults to the SPECTRA_RUN
// env value or "run" when unset.
std::string run_manifest_json(const std::string& run_name = "");

// Write run_manifest_json() to `path`, or to $SPECTRA_RUNMETA when
// `path` is empty. No-op when neither names a file.
void write_run_manifest(const std::string& path = "", const std::string& run_name = "");

}  // namespace spectra::obs
