// RAII trace spans exported as Chrome trace-event JSON ("X" complete
// events), viewable in chrome://tracing or https://ui.perfetto.dev.
//
// Tracing is off by default. Setting SPECTRA_TRACE=<file> enables it at
// startup and registers an atexit flush to that file; tests toggle it
// with trace_set_enabled(). When disabled, SG_TRACE_SPAN costs one
// relaxed atomic load and a branch.
//
//   void step() {
//     SG_TRACE_SPAN("train/d_step");
//     ...
//   }

#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace spectra::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;

// Microseconds since the process trace origin (monotonic clock).
std::uint64_t trace_now_us();

// Append one complete span to the calling thread's buffer.
void trace_record(const char* name, std::uint64_t start_us, std::uint64_t dur_us);
}  // namespace detail

inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

// Runtime toggle (SPECTRA_TRACE flips it on during static init).
void trace_set_enabled(bool enabled);

// Serialize every recorded span (all threads) as a Chrome trace JSON
// document. Safe to call while other threads are still recording.
std::string trace_json();

// Write trace_json() to `path`, or to $SPECTRA_TRACE when `path` is
// empty. No-op when neither names a file.
void trace_flush(const std::string& path = "");

// Discard all recorded spans. Tests only.
void trace_reset();

// Scoped span: captures the start time at construction and records a
// complete event at destruction. Spans nest naturally per thread.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (trace_enabled()) {
      name_ = name;
      start_us_ = detail::trace_now_us();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      detail::trace_record(name_, start_us_, detail::trace_now_us() - start_us_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;  // nullptr while tracing is disabled
  std::uint64_t start_us_ = 0;
};

}  // namespace spectra::obs

#define SG_TRACE_CONCAT_INNER(a, b) a##b
#define SG_TRACE_CONCAT(a, b) SG_TRACE_CONCAT_INNER(a, b)

// `name` must be a string literal (or otherwise outlive the span).
#define SG_TRACE_SPAN(name) \
  ::spectra::obs::TraceSpan SG_TRACE_CONCAT(sg_trace_span_, __COUNTER__)(name)
