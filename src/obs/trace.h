// RAII trace spans exported as Chrome trace-event JSON ("X" complete
// events), viewable in chrome://tracing or https://ui.perfetto.dev.
//
// Tracing is off by default. Setting SPECTRA_TRACE=<file> enables it at
// startup and *streams* events to that file: buffered spans are drained
// to disk every kStreamFlushEvents records (bounding memory) as a bare
// JSON event array — a format the trace viewers accept even without the
// closing bracket, so a SIGKILL'd run keeps everything flushed so far.
// A clean exit finalizes the array via atexit; on the next start a
// leftover partial file is finalized and renamed <file>.recovered before
// the new stream opens. Tests toggle recording with trace_set_enabled()
// and use trace_json()/trace_flush(path), which keep their in-memory
// whole-document semantics. When disabled, SG_TRACE_SPAN costs one
// relaxed atomic load and a branch.
//
//   void step() {
//     SG_TRACE_SPAN("train/d_step");
//     ...
//   }

#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace spectra::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;

// Microseconds since the process trace origin (monotonic clock).
std::uint64_t trace_now_us();

// Append one complete span to the calling thread's buffer.
void trace_record(const char* name, std::uint64_t start_us, std::uint64_t dur_us);

// Idempotent SPECTRA_TRACE autostart hook, invoked from
// Registry::instance() so the static-archive linker cannot drop it.
void trace_env_autostart();
}  // namespace detail

// Buffered spans accumulated before a streaming drain kicks in. Bounds
// trace memory to roughly this many events per flush interval.
inline constexpr std::uint64_t kStreamFlushEvents = 4096;

inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

// Runtime toggle (SPECTRA_TRACE flips it on during static init).
void trace_set_enabled(bool enabled);

// Serialize every recorded span (all threads) as a Chrome trace JSON
// document. Safe to call while other threads are still recording.
std::string trace_json();

// Write trace_json() to `path`, or to $SPECTRA_TRACE when `path` is
// empty. No-op when neither names a file. When a stream is open this
// snapshot only covers spans not yet drained to the stream.
void trace_flush(const std::string& path = "");

// Discard all recorded spans. Tests only.
void trace_reset();

// --- streaming (SIGKILL-safe) export ------------------------------------

// Open `path` as a streaming event-array sink: recorded spans are
// appended in batches of kStreamFlushEvents (drained buffers are freed,
// bounding memory). Any partial stream already at `path` is recovered
// first. The env autostart calls this with $SPECTRA_TRACE.
void trace_stream_open(const std::string& path);

// Drain all buffered spans to the open stream now. No-op without one.
void trace_stream_drain();

// Drain, append the closing bracket, and close the stream file, leaving
// a well-formed JSON array on disk. No-op without an open stream.
void trace_stream_close();

// Finalize a partial stream left by a killed process: append the closing
// bracket and rename to `path`.recovered. Returns true when a partial
// file was recovered, false when `path` is absent or already complete.
bool trace_recover_partial(const std::string& path);

// Scoped span: captures the start time at construction and records a
// complete event at destruction. Spans nest naturally per thread.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (trace_enabled()) {
      name_ = name;
      start_us_ = detail::trace_now_us();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      detail::trace_record(name_, start_us_, detail::trace_now_us() - start_us_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;  // nullptr while tracing is disabled
  std::uint64_t start_us_ = 0;
};

}  // namespace spectra::obs

#define SG_TRACE_CONCAT_INNER(a, b) a##b
#define SG_TRACE_CONCAT(a, b) SG_TRACE_CONCAT_INNER(a, b)

// `name` must be a string literal (or otherwise outlive the span).
// -DSPECTRA_STRIP_PROBES compiles the span away entirely (see
// SG_PROFILE_SCOPE) for the CI obs-overhead baseline build.
#if defined(SPECTRA_STRIP_PROBES)
#define SG_TRACE_SPAN(name) \
  do {                      \
  } while (false)
#else
#define SG_TRACE_SPAN(name) \
  ::spectra::obs::TraceSpan SG_TRACE_CONCAT(sg_trace_span_, __COUNTER__)(name)
#endif
