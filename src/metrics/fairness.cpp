#include "metrics/fairness.h"

#include "util/error.h"

namespace spectra::metrics {

double jain_fairness(const std::vector<double>& loads) {
  SG_CHECK(!loads.empty(), "jain_fairness of empty loads");
  double sum = 0.0, sum_sq = 0.0;
  for (double x : loads) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(loads.size()) * sum_sq);
}

}  // namespace spectra::metrics
