// Pearson correlation coefficient — used for the Table 1 context-vs-
// traffic analysis and the attribute-selection rationale of §3.1.

#pragma once

#include <vector>

#include "geo/grid.h"

namespace spectra::metrics {

// PCC of two equal-length samples; 0 when either side is constant.
double pearson(const std::vector<double>& x, const std::vector<double>& y);

// PCC between two maps' pixel values.
double pearson(const geo::GridMap& x, const geo::GridMap& y);

}  // namespace spectra::metrics
