#include "metrics/psnr.h"

#include <cmath>

#include "util/error.h"

namespace spectra::metrics {

double psnr(const geo::GridMap& reference, const geo::GridMap& estimate, double peak) {
  SG_CHECK(reference.same_shape(estimate), "psnr requires equal-shaped maps");
  SG_CHECK(reference.size() > 0, "psnr of empty maps");
  if (peak <= 0.0) peak = reference.max();
  SG_CHECK(peak > 0.0, "psnr requires a positive peak");

  double mse = 0.0;
  for (long i = 0; i < reference.size(); ++i) {
    const double diff = reference[i] - estimate[i];
    mse += diff * diff;
  }
  mse /= static_cast<double>(reference.size());
  if (mse <= 0.0) return 300.0;  // identical maps
  return 10.0 * std::log10(peak * peak / mse);
}

}  // namespace spectra::metrics
