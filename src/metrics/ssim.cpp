#include "metrics/ssim.h"

#include "util/error.h"

namespace spectra::metrics {

double ssim(const geo::GridMap& a, const geo::GridMap& b, double dynamic_range) {
  SG_CHECK(a.same_shape(b), "ssim requires equal-shaped maps");
  SG_CHECK(a.size() > 1, "ssim requires at least two pixels");
  SG_CHECK(dynamic_range > 0.0, "ssim requires positive dynamic range");

  const long n = a.size();
  double mean_a = 0.0, mean_b = 0.0;
  for (long i = 0; i < n; ++i) {
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= static_cast<double>(n);
  mean_b /= static_cast<double>(n);

  double var_a = 0.0, var_b = 0.0, cov = 0.0;
  for (long i = 0; i < n; ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    var_a += da * da;
    var_b += db * db;
    cov += da * db;
  }
  const double denom = static_cast<double>(n - 1);
  var_a /= denom;
  var_b /= denom;
  cov /= denom;

  const double c1 = (0.01 * dynamic_range) * (0.01 * dynamic_range);
  const double c2 = (0.03 * dynamic_range) * (0.03 * dynamic_range);
  return ((2.0 * mean_a * mean_b + c1) * (2.0 * cov + c2)) /
         ((mean_a * mean_a + mean_b * mean_b + c1) * (var_a + var_b + c2));
}

}  // namespace spectra::metrics
