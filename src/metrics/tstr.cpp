#include "metrics/tstr.h"

#include <cmath>

#include "util/error.h"

namespace spectra::metrics {

TstrModel fit_tstr(const geo::CityTensor& train) {
  SG_CHECK(train.steps() >= 2, "fit_tstr requires at least two steps");

  // Simple linear regression accumulated streaming over all pairs.
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  long n = 0;
  for (long t = 0; t + 1 < train.steps(); ++t) {
    for (long i = 0; i < train.height(); ++i) {
      for (long j = 0; j < train.width(); ++j) {
        const double x = train.at(t, i, j);
        const double y = train.at(t + 1, i, j);
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
        ++n;
      }
    }
  }
  SG_CHECK(n > 1, "fit_tstr: no training pairs");
  const double denom = static_cast<double>(n) * sxx - sx * sx;
  TstrModel model;
  // Relative threshold: constant inputs cancel only up to accumulation
  // round-off, which scales with the magnitude of the sums involved.
  if (std::fabs(denom) < 1e-12 * (static_cast<double>(n) * sxx + 1e-30)) {
    // Constant synthetic data: the best linear predictor is the mean.
    model.slope = 0.0;
    model.intercept = sy / static_cast<double>(n);
  } else {
    model.slope = (static_cast<double>(n) * sxy - sx * sy) / denom;
    model.intercept = (sy - model.slope * sx) / static_cast<double>(n);
  }
  model.fitted = true;
  return model;
}

double evaluate_tstr(const TstrModel& model, const geo::CityTensor& test) {
  SG_CHECK(model.fitted, "TstrModel not fitted");
  SG_CHECK(test.steps() >= 2, "evaluate_tstr requires at least two steps");

  double sum_y = 0.0;
  long count = 0;
  for (long t = 1; t < test.steps(); ++t) {
    for (long i = 0; i < test.height(); ++i) {
      for (long j = 0; j < test.width(); ++j) {
        sum_y += test.at(t, i, j);
        ++count;
      }
    }
  }
  const double mean_y = sum_y / static_cast<double>(count);

  double sse = 0.0, sst = 0.0;
  for (long t = 0; t + 1 < test.steps(); ++t) {
    for (long i = 0; i < test.height(); ++i) {
      for (long j = 0; j < test.width(); ++j) {
        const double pred = model.intercept + model.slope * test.at(t, i, j);
        const double y = test.at(t + 1, i, j);
        sse += (y - pred) * (y - pred);
        sst += (y - mean_y) * (y - mean_y);
      }
    }
  }
  if (sst <= 1e-18) return 0.0;
  return 1.0 - sse / sst;
}

double tstr_r2(const geo::CityTensor& synthetic, const geo::CityTensor& real) {
  return evaluate_tstr(fit_tstr(synthetic), real);
}

}  // namespace spectra::metrics
