// Peak Signal-to-Noise Ratio between raster maps — the image-fidelity
// metric for the dynamic population tracking use case (§5.3, Table 8).

#pragma once

#include "geo/grid.h"

namespace spectra::metrics {

// PSNR in dB: 10 log10(peak^2 / MSE). `peak` defaults to the max of the
// reference map. Returns +inf-like large value (300 dB) on identical maps.
double psnr(const geo::GridMap& reference, const geo::GridMap& estimate, double peak = -1.0);

}  // namespace spectra::metrics
