#include "metrics/fvd.h"

#include <cmath>

#include "dsp/signature.h"
#include "metrics/linalg.h"
#include "util/error.h"

namespace spectra::metrics {

namespace {

// Pool a frame into {whole-city mean, four quadrant means}.
std::vector<double> pool_frame(const geo::CityTensor& tensor, long t) {
  const long h = tensor.height();
  const long w = tensor.width();
  const long hm = h / 2;
  const long wm = w / 2;
  double quad[4] = {0, 0, 0, 0};
  long quad_n[4] = {0, 0, 0, 0};
  double total = 0.0;
  for (long i = 0; i < h; ++i) {
    for (long j = 0; j < w; ++j) {
      const double v = tensor.at(t, i, j);
      total += v;
      const int q = (i < hm ? 0 : 2) + (j < wm ? 0 : 1);
      quad[q] += v;
      ++quad_n[q];
    }
  }
  std::vector<double> out(5);
  out[0] = total / static_cast<double>(h * w);
  for (int q = 0; q < 4; ++q)
    out[static_cast<std::size_t>(1 + q)] =
        quad[q] / static_cast<double>(std::max<long>(quad_n[q], 1));
  return out;
}

}  // namespace

std::vector<std::vector<double>> fvd_embeddings(const geo::CityTensor& tensor,
                                                const FvdConfig& config) {
  SG_CHECK(config.window >= 2 && config.stride >= 1, "invalid FVD window config");
  SG_CHECK(tensor.steps() >= config.window, "tensor shorter than one FVD window");

  // Pool every frame once, then slice windows.
  std::vector<std::vector<double>> pooled;
  pooled.reserve(static_cast<std::size_t>(tensor.steps()));
  for (long t = 0; t < tensor.steps(); ++t) pooled.push_back(pool_frame(tensor, t));

  std::vector<std::vector<double>> embeddings;
  for (long start = 0; start + config.window <= tensor.steps(); start += config.stride) {
    std::vector<std::vector<double>> window(pooled.begin() + start,
                                            pooled.begin() + start + config.window);
    embeddings.push_back(dsp::signature_transform(window, config.depth, /*time_augment=*/true));
  }
  return embeddings;
}

double frechet_distance(const std::vector<std::vector<double>>& a,
                        const std::vector<std::vector<double>>& b, double ridge) {
  SG_CHECK(a.size() >= 2 && b.size() >= 2, "frechet_distance requires >= 2 embeddings per side");
  const long d = static_cast<long>(a[0].size());
  SG_CHECK(static_cast<long>(b[0].size()) == d, "embedding dimension mismatch");

  auto fit_gaussian = [d, ridge](const std::vector<std::vector<double>>& cloud,
                                 std::vector<double>& mean, SquareMatrix& cov) {
    mean.assign(static_cast<std::size_t>(d), 0.0);
    for (const auto& row : cloud) {
      for (long i = 0; i < d; ++i) mean[static_cast<std::size_t>(i)] += row[static_cast<std::size_t>(i)];
    }
    for (double& m : mean) m /= static_cast<double>(cloud.size());
    cov = SquareMatrix(d);
    for (const auto& row : cloud) {
      for (long i = 0; i < d; ++i) {
        const double di = row[static_cast<std::size_t>(i)] - mean[static_cast<std::size_t>(i)];
        for (long j = 0; j < d; ++j) {
          cov.at(i, j) += di * (row[static_cast<std::size_t>(j)] - mean[static_cast<std::size_t>(j)]);
        }
      }
    }
    const double inv = 1.0 / static_cast<double>(cloud.size() - 1);
    for (long i = 0; i < d; ++i) {
      for (long j = 0; j < d; ++j) cov.at(i, j) *= inv;
      cov.at(i, i) += ridge;
    }
  };

  std::vector<double> mu_a, mu_b;
  SquareMatrix cov_a(d), cov_b(d);
  fit_gaussian(a, mu_a, cov_a);
  fit_gaussian(b, mu_b, cov_b);

  double mean_term = 0.0;
  for (long i = 0; i < d; ++i) {
    const double diff = mu_a[static_cast<std::size_t>(i)] - mu_b[static_cast<std::size_t>(i)];
    mean_term += diff * diff;
  }

  // Tr((Ca^1/2 Cb Ca^1/2)^1/2) — the symmetric form of Tr((Ca Cb)^1/2).
  const SquareMatrix sqrt_a = sqrtm_psd(cov_a);
  const SquareMatrix inner = matmul(matmul(sqrt_a, cov_b), sqrt_a);
  const SquareMatrix cross = sqrtm_psd(inner);

  return mean_term + trace(cov_a) + trace(cov_b) - 2.0 * trace(cross);
}

double fvd(const geo::CityTensor& real, const geo::CityTensor& synthetic, const FvdConfig& config) {
  return frechet_distance(fvd_embeddings(real, config), fvd_embeddings(synthetic, config),
                          config.ridge);
}

}  // namespace spectra::metrics
