// AC-L1 metric (§3.2): temporal fidelity as the L1 distance between
// pixel-level autocorrelation functions of real and synthetic traffic,
// averaged over pixels. The paper does not specify a per-lag
// normalization; we use the plain sum over lags, which lands in the same
// decades as the reported values (tens to low hundreds).

#pragma once

#include "geo/city_tensor.h"

namespace spectra::metrics {

// Sum over lags 1..max_lag of |r_real(l) - r_synth(l)|, averaged across
// pixels whose real series has positive variance.
double autocorr_l1(const geo::CityTensor& real, const geo::CityTensor& synthetic, long max_lag);

}  // namespace spectra::metrics
