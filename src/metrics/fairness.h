// Jain's fairness index — used to score the balance of CU loads in the
// vRAN resource-allocation use case (§5.2, Table 7).

#pragma once

#include <vector>

namespace spectra::metrics {

// (sum x)^2 / (n * sum x^2), in (0, 1]; 1 = perfectly balanced.
// An all-zero load vector returns 1 (vacuously balanced).
double jain_fairness(const std::vector<double>& loads);

}  // namespace spectra::metrics
