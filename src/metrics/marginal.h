// M-TV metric (§3.2): total-variation distance between the empirical
// marginal distributions of traffic volume across all pixels and steps of
// real vs synthetic tensors.

#pragma once

#include <vector>

#include "geo/city_tensor.h"

namespace spectra::metrics {

// Empirical histogram of `values` over [lo, hi] with `bins` equal bins,
// normalized to a probability vector (out-of-range values clamp to the
// edge bins).
std::vector<double> histogram(const std::vector<double>& values, double lo, double hi, long bins);

// TV distance between two probability vectors of equal length.
double total_variation(const std::vector<double>& p, const std::vector<double>& q);

// The paper's M-TV: histograms share the range [0, max(real, synth)].
double marginal_tv(const geo::CityTensor& real, const geo::CityTensor& synthetic, long bins = 64);

}  // namespace spectra::metrics
