// Fréchet "video" distance (§3.2) adapted as in the paper: instead of a
// pretrained video network, spatiotemporal traffic is flattened into a
// multivariate series, embedded with a path-signature transform, and the
// Fréchet distance is computed between Gaussian fits of the real and
// synthetic embedding clouds:
//   FVD = ||mu_r - mu_s||^2 + Tr(C_r + C_s - 2 (C_r^1/2 C_s C_r^1/2)^1/2).
//
// Embeddings: windows of `window` steps (stride `stride`) are pooled into
// five spatial channels (city mean + four quadrant means), time-augmented
// and signed at depth 2. Window pooling keeps the embedding dimension
// independent of the city size, so FVD is comparable across cities.

#pragma once

#include <vector>

#include "geo/city_tensor.h"

namespace spectra::metrics {

struct FvdConfig {
  long window = 48;   // steps per embedded window
  long stride = 12;   // window stride
  int depth = 2;      // signature depth
  double ridge = 1e-6;  // covariance regularizer
};

// Signature embeddings for every window of the tensor.
std::vector<std::vector<double>> fvd_embeddings(const geo::CityTensor& tensor,
                                                const FvdConfig& config = {});

// Fréchet distance between Gaussian fits of two embedding clouds.
double frechet_distance(const std::vector<std::vector<double>>& a,
                        const std::vector<std::vector<double>>& b, double ridge = 1e-6);

// End-to-end FVD between real and synthetic traffic.
double fvd(const geo::CityTensor& real, const geo::CityTensor& synthetic,
           const FvdConfig& config = {});

}  // namespace spectra::metrics
