#include "metrics/autocorr_l1.h"

#include <algorithm>
#include <cmath>

#include "dsp/autocorr.h"
#include "util/error.h"

namespace spectra::metrics {

double autocorr_l1(const geo::CityTensor& real, const geo::CityTensor& synthetic, long max_lag) {
  SG_CHECK(real.height() == synthetic.height() && real.width() == synthetic.width(),
           "autocorr_l1 requires equal spatial shapes");
  const long lag = std::min({max_lag, real.steps() - 1, synthetic.steps() - 1});
  SG_CHECK(lag >= 1, "autocorr_l1 requires at least one valid lag");

  double total = 0.0;
  long counted = 0;
  for (long i = 0; i < real.height(); ++i) {
    for (long j = 0; j < real.width(); ++j) {
      const std::vector<double> series_real = real.pixel_series(i, j);
      // Skip pixels with no signal (sea / empty land): their
      // autocorrelation is undefined.
      double mean = 0.0, var = 0.0;
      for (double v : series_real) mean += v;
      mean /= static_cast<double>(series_real.size());
      for (double v : series_real) var += (v - mean) * (v - mean);
      if (var <= 1e-18) continue;

      const std::vector<double> r_real = dsp::autocorrelation(series_real, lag);
      const std::vector<double> r_synth =
          dsp::autocorrelation(synthetic.pixel_series(i, j), lag);
      double acc = 0.0;
      for (long l = 1; l <= lag; ++l) {
        acc += std::fabs(r_real[static_cast<std::size_t>(l)] - r_synth[static_cast<std::size_t>(l)]);
      }
      total += acc;
      ++counted;
    }
  }
  SG_CHECK(counted > 0, "autocorr_l1: no pixel with positive variance");
  return total / static_cast<double>(counted);
}

}  // namespace spectra::metrics
