// Train-Synthetic-Test-Real (§3.2): fit a linear next-step traffic
// predictor on the synthetic tensor, evaluate it on the real tensor, and
// report the out-of-sample R^2 — the paper's generic-downstream-use-case
// metric. The regression is the plain per-pixel linear model
//   x_{t+1,p} ~ w0 + w1 * x_{t,p}
// so only generators that preserve the step-to-step temporal structure
// transfer (R^2 near the DATA bound); one that scrambles time (Pix2Pix)
// yields an uninformative predictor and low R^2.

#pragma once

#include <vector>

#include "geo/city_tensor.h"

namespace spectra::metrics {

struct TstrModel {
  double intercept = 0.0;
  double slope = 0.0;
  bool fitted = false;
};

// Least-squares fit on all (t, pixel) next-step pairs of `train`.
TstrModel fit_tstr(const geo::CityTensor& train);

// R^2 of `model` predictions on all pairs of `test`.
double evaluate_tstr(const TstrModel& model, const geo::CityTensor& test);

// Convenience: fit on synthetic, test on real.
double tstr_r2(const geo::CityTensor& synthetic, const geo::CityTensor& real);

}  // namespace spectra::metrics
