#include "metrics/linalg.h"

#include <cmath>

#include "util/error.h"

namespace spectra::metrics {

std::vector<double> solve_linear_system(SquareMatrix a, std::vector<double> b) {
  const long n = a.n;
  SG_CHECK(static_cast<long>(b.size()) == n, "solve_linear_system: dimension mismatch");
  for (long col = 0; col < n; ++col) {
    // Partial pivot.
    long pivot = col;
    for (long row = col + 1; row < n; ++row) {
      if (std::fabs(a.at(row, col)) > std::fabs(a.at(pivot, col))) pivot = row;
    }
    SG_CHECK(std::fabs(a.at(pivot, col)) > 1e-12, "solve_linear_system: singular matrix");
    if (pivot != col) {
      for (long j = 0; j < n; ++j) std::swap(a.at(col, j), a.at(pivot, j));
      std::swap(b[static_cast<std::size_t>(col)], b[static_cast<std::size_t>(pivot)]);
    }
    const double inv = 1.0 / a.at(col, col);
    for (long row = col + 1; row < n; ++row) {
      const double factor = a.at(row, col) * inv;
      if (factor == 0.0) continue;
      for (long j = col; j < n; ++j) a.at(row, j) -= factor * a.at(col, j);
      b[static_cast<std::size_t>(row)] -= factor * b[static_cast<std::size_t>(col)];
    }
  }
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  for (long row = n - 1; row >= 0; --row) {
    double acc = b[static_cast<std::size_t>(row)];
    for (long j = row + 1; j < n; ++j) acc -= a.at(row, j) * x[static_cast<std::size_t>(j)];
    x[static_cast<std::size_t>(row)] = acc / a.at(row, row);
  }
  return x;
}

void symmetric_eigen(const SquareMatrix& input, std::vector<double>& eigenvalues, SquareMatrix& v) {
  const long n = input.n;
  SquareMatrix a = input;
  v = SquareMatrix(n);
  for (long i = 0; i < n; ++i) v.at(i, i) = 1.0;

  const int max_sweeps = 64;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (long i = 0; i < n; ++i) {
      for (long j = i + 1; j < n; ++j) off += a.at(i, j) * a.at(i, j);
    }
    if (off < 1e-22) break;
    for (long p = 0; p < n - 1; ++p) {
      for (long q = p + 1; q < n; ++q) {
        const double apq = a.at(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double app = a.at(p, p);
        const double aqq = a.at(q, q);
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0.0 ? 1.0 : -1.0) / (std::fabs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        // Rotate rows/columns p and q.
        for (long k = 0; k < n; ++k) {
          const double akp = a.at(k, p);
          const double akq = a.at(k, q);
          a.at(k, p) = c * akp - s * akq;
          a.at(k, q) = s * akp + c * akq;
        }
        for (long k = 0; k < n; ++k) {
          const double apk = a.at(p, k);
          const double aqk = a.at(q, k);
          a.at(p, k) = c * apk - s * aqk;
          a.at(q, k) = s * apk + c * aqk;
        }
        for (long k = 0; k < n; ++k) {
          const double vkp = v.at(k, p);
          const double vkq = v.at(k, q);
          v.at(k, p) = c * vkp - s * vkq;
          v.at(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  eigenvalues.assign(static_cast<std::size_t>(n), 0.0);
  for (long i = 0; i < n; ++i) eigenvalues[static_cast<std::size_t>(i)] = a.at(i, i);
}

SquareMatrix matmul(const SquareMatrix& a, const SquareMatrix& b) {
  SG_CHECK(a.n == b.n, "matmul: dimension mismatch");
  const long n = a.n;
  SquareMatrix c(n);
  for (long i = 0; i < n; ++i) {
    for (long k = 0; k < n; ++k) {
      const double av = a.at(i, k);
      if (av == 0.0) continue;
      for (long j = 0; j < n; ++j) c.at(i, j) += av * b.at(k, j);
    }
  }
  return c;
}

SquareMatrix sqrtm_psd(const SquareMatrix& a) {
  std::vector<double> eigenvalues;
  SquareMatrix v(a.n);
  symmetric_eigen(a, eigenvalues, v);
  const long n = a.n;
  SquareMatrix result(n);
  for (long i = 0; i < n; ++i) {
    for (long j = 0; j < n; ++j) {
      double acc = 0.0;
      for (long k = 0; k < n; ++k) {
        const double lambda = std::max(eigenvalues[static_cast<std::size_t>(k)], 0.0);
        acc += v.at(i, k) * std::sqrt(lambda) * v.at(j, k);
      }
      result.at(i, j) = acc;
    }
  }
  return result;
}

double trace(const SquareMatrix& a) {
  double acc = 0.0;
  for (long i = 0; i < a.n; ++i) acc += a.at(i, i);
  return acc;
}

}  // namespace spectra::metrics
