#include "metrics/marginal.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace spectra::metrics {

std::vector<double> histogram(const std::vector<double>& values, double lo, double hi, long bins) {
  SG_CHECK(bins > 0, "histogram requires bins > 0");
  SG_CHECK(hi > lo, "histogram requires hi > lo");
  SG_CHECK(!values.empty(), "histogram of empty values");
  std::vector<double> h(static_cast<std::size_t>(bins), 0.0);
  const double scale = static_cast<double>(bins) / (hi - lo);
  for (double v : values) {
    long bin = static_cast<long>((v - lo) * scale);
    bin = std::clamp<long>(bin, 0, bins - 1);
    h[static_cast<std::size_t>(bin)] += 1.0;
  }
  const double inv = 1.0 / static_cast<double>(values.size());
  for (double& x : h) x *= inv;
  return h;
}

double total_variation(const std::vector<double>& p, const std::vector<double>& q) {
  SG_CHECK(p.size() == q.size(), "total_variation requires equal-length distributions");
  double acc = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) acc += std::fabs(p[i] - q[i]);
  return 0.5 * acc;
}

double marginal_tv(const geo::CityTensor& real, const geo::CityTensor& synthetic, long bins) {
  SG_CHECK(real.size() > 0 && synthetic.size() > 0, "marginal_tv of empty tensors");
  double hi = 0.0;
  for (double v : real.values()) hi = std::max(hi, v);
  for (double v : synthetic.values()) hi = std::max(hi, v);
  if (hi <= 0.0) hi = 1.0;
  const std::vector<double> p = histogram(real.values(), 0.0, hi, bins);
  const std::vector<double> q = histogram(synthetic.values(), 0.0, hi, bins);
  return total_variation(p, q);
}

}  // namespace spectra::metrics
