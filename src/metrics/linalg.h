// Small dense linear-algebra helpers shared by the TSTR regression and
// the FVD Fréchet-distance computation: column-major-free plain vectors,
// Gaussian elimination, and a cyclic Jacobi eigensolver for symmetric
// matrices (dimensions here are tiny — tens — so O(n^3) sweeps are fine).

#pragma once

#include <vector>

namespace spectra::metrics {

// n x n matrix stored row-major.
struct SquareMatrix {
  long n = 0;
  std::vector<double> a;

  explicit SquareMatrix(long size) : n(size), a(static_cast<std::size_t>(size * size), 0.0) {}
  double& at(long i, long j) { return a[static_cast<std::size_t>(i * n + j)]; }
  double at(long i, long j) const { return a[static_cast<std::size_t>(i * n + j)]; }
};

// Solve A x = b by Gaussian elimination with partial pivoting; A is
// modified. Throws spectra::Error if A is singular to working precision.
std::vector<double> solve_linear_system(SquareMatrix a, std::vector<double> b);

// Eigen-decomposition of a symmetric matrix: fills eigenvalues (ascending
// not guaranteed) and eigenvectors (columns of V). Cyclic Jacobi.
void symmetric_eigen(const SquareMatrix& a, std::vector<double>& eigenvalues, SquareMatrix& v);

// Matrix product C = A * B.
SquareMatrix matmul(const SquareMatrix& a, const SquareMatrix& b);

// Symmetric positive-semidefinite square root via eigen-decomposition
// (negative eigenvalues from round-off are clamped to zero).
SquareMatrix sqrtm_psd(const SquareMatrix& a);

// Trace.
double trace(const SquareMatrix& a);

}  // namespace spectra::metrics
