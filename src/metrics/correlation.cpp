#include "metrics/correlation.h"

#include <cmath>

#include "util/error.h"

namespace spectra::metrics {

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  SG_CHECK(x.size() == y.size() && x.size() >= 2, "pearson requires equal-length samples (>=2)");
  const double n = static_cast<double>(x.size());
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= n;
  my /= n;
  double sxx = 0.0, syy = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    syy += dy * dy;
    sxy += dx * dy;
  }
  if (sxx <= 1e-18 || syy <= 1e-18) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double pearson(const geo::GridMap& x, const geo::GridMap& y) {
  SG_CHECK(x.same_shape(y), "pearson requires equal-shaped maps");
  return pearson(x.values(), y.values());
}

}  // namespace spectra::metrics
