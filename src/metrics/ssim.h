// SSIM on time-averaged traffic maps (§3.2): the spatial-fidelity metric.
// Computed globally over the map (single-window SSIM) with the standard
// stabilization constants relative to the data dynamic range.

#pragma once

#include "geo/grid.h"

namespace spectra::geo {
class GridMap;
}

namespace spectra::metrics {

// SSIM between two equal-shaped maps. `dynamic_range` is L in the usual
// formula; traffic maps are peak-normalized so the default is 1.
double ssim(const geo::GridMap& a, const geo::GridMap& b, double dynamic_range = 1.0);

}  // namespace spectra::metrics
